"""Tests for the scale-compensation mechanisms documented in DESIGN.md.

These behaviours were added to keep the paper's mechanisms faithful at
laptop-scale trace lengths; each is load-bearing for the headline
results, so each is pinned here.
"""

import pytest

from repro.core.controller import SlipPlacement
from repro.core.policy import SlipSpace
from repro.core.runtime import SlipRuntime
from repro.core.sampling import PageState
from repro.mem.cache import CacheLevel
from repro.mem.replacement import LruReplacement


@pytest.fixture
def runtime(tiny_system):
    return SlipRuntime(tiny_system, seed=0)


@pytest.fixture
def controller(tiny_system, runtime):
    cfg = tiny_system.l2
    space = SlipSpace(
        cfg.sublevel_ways,
        tuple(cfg.sublevel_capacity_lines(i) for i in range(3)),
    )
    level = CacheLevel(cfg, LruReplacement())
    placement = SlipPlacement(space, runtime)
    placement.attach(level)
    return level, placement


class TestHitSampleClamping:
    def test_inflated_hit_distance_lands_in_hit_bins(self, controller,
                                                     runtime):
        """A hit whose timestamp delta exceeds capacity must still be
        recorded below capacity — it physically hit the level."""
        level, placement = controller
        runtime.on_demand_access(0)
        placement.fill(0, page=0)
        set_idx, way = level.probe(0)
        # Age the level's access counter far beyond its capacity.
        for _ in range(3 * level.cfg.lines):
            level.tick()
        placement.on_hit(set_idx, way)
        dist = runtime.pages[0].distributions["L2"]
        assert sum(dist.counts[:-1]) == 1
        assert dist.counts[-1] == 0

    def test_short_distance_unaffected_by_clamp(self, controller, runtime):
        level, placement = controller
        runtime.on_demand_access(0)
        placement.fill(0, page=0)
        set_idx, way = level.probe(0)
        granule = level.timestamp_wrap >> level.timestamp_bits
        for _ in range(granule):
            level.tick()
        placement.on_hit(set_idx, way)
        dist = runtime.pages[0].distributions["L2"]
        assert dist.counts[dist.bin_of(granule)] == 1


class TestTwoVisitGate:
    def _samples(self, runtime, page, n):
        for _ in range(n):
            runtime.record_miss_sample("L2", page)
            runtime.record_miss_sample("L3", page)

    def test_single_visit_cannot_stabilize(self, runtime):
        runtime.sampler.nsamp = 1  # transition would fire immediately
        runtime.on_demand_access(3)        # visit 1
        self._samples(runtime, 3, 20)
        assert runtime.pages[3].state is PageState.SAMPLING

    def test_second_visit_stabilizes_warm_page(self, runtime):
        runtime.sampler.nsamp = 1
        runtime.on_demand_access(3)        # visit 1
        self._samples(runtime, 3, 20)
        runtime.tlb.flush()
        runtime.on_demand_access(3)        # visit 2
        assert runtime.pages[3].state is PageState.STABLE

    def test_two_visits_but_cold_cannot_stabilize(self, runtime):
        runtime.sampler.nsamp = 1
        runtime.on_demand_access(3)
        self._samples(runtime, 3, 2)       # below the 8-sample floor
        runtime.tlb.flush()
        runtime.on_demand_access(3)
        assert runtime.pages[3].state is PageState.SAMPLING

    def test_visit_counter_resets_on_destabilize(self, runtime):
        runtime.sampler.nsamp = 1
        runtime.on_demand_access(3)
        self._samples(runtime, 3, 20)
        runtime.tlb.flush()
        runtime.on_demand_access(3)
        assert runtime.pages[3].state is PageState.STABLE
        # Force back to sampling.
        runtime.sampler.nstab = 1
        runtime.tlb.flush()
        runtime.on_demand_access(3)
        assert runtime.pages[3].state is PageState.SAMPLING
        assert runtime.pages[3].sampling_visits <= 1

    def test_min_samples_floor_value(self, runtime):
        # Streaming pages plateau at 8 after counter halving; the gate
        # must not exceed that or streams can never classify.
        assert SlipRuntime.MIN_SAMPLES_TO_STABILIZE <= 8


class TestSamplerScalingInvariant:
    def test_scaled_rates_preserve_fetch_fraction(self):
        """2/32 keeps the paper's 5.9% distribution-fetch fraction."""
        from repro.core.sampling import TimeBasedSampler

        paper = TimeBasedSampler(16, 256)
        scaled = TimeBasedSampler(2, 32)
        assert scaled.expected_sampling_fraction() == pytest.approx(
            paper.expected_sampling_fraction()
        )
