"""Tests for the quantized reuse-distance distribution (Section 4.1)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.distribution import ReuseDistanceDistribution

BOUNDS = (1024, 2048, 4096)


class TestBinning:
    @pytest.fixture
    def dist(self):
        return ReuseDistanceDistribution(BOUNDS)

    def test_bin_edges(self, dist):
        assert dist.bin_of(0) == 0
        assert dist.bin_of(1023) == 0
        assert dist.bin_of(1024) == 1
        assert dist.bin_of(2047) == 1
        assert dist.bin_of(2048) == 2
        assert dist.bin_of(4095) == 2
        assert dist.bin_of(4096) == 3
        assert dist.bin_of(10 ** 9) == 3

    def test_num_bins_is_boundaries_plus_one(self, dist):
        assert dist.num_bins == 4

    def test_record_increments(self, dist):
        dist.record(100)
        dist.record(3000)
        assert dist.counts == [1, 0, 1, 0]

    def test_record_miss_lands_in_last_bin(self, dist):
        dist.record_miss()
        assert dist.counts == [0, 0, 0, 1]

    def test_storage_is_16_bits(self, dist):
        # 4 bins x 4 bits: the paper's per-level footprint.
        assert dist.storage_bits == 16


class TestHalving:
    def test_halve_on_overflow(self):
        dist = ReuseDistanceDistribution(BOUNDS, counter_bits=4)
        for _ in range(15):
            dist.record(0)
        assert dist.counts[0] == 15
        dist.record(0)  # would overflow: halve everything, then count
        assert dist.counts[0] == 8  # 15 >> 1 == 7, then +1

    def test_halving_affects_all_bins(self):
        dist = ReuseDistanceDistribution(BOUNDS, counter_bits=4)
        dist.counts = [4, 15, 0, 12]
        dist.record(1500)  # bin 1 is saturated
        assert dist.counts == [2, 8, 0, 6]

    def test_paper_halving_example(self):
        # Section 4.1's worked example: [4, 15, 0, 12] + bin-1 access
        # becomes [2, 8, 0, 6].
        dist = ReuseDistanceDistribution(BOUNDS, counter_bits=4)
        dist.counts = [4, 15, 0, 12]
        dist.record_bin(1)
        assert dist.counts == [2, 8, 0, 6]

    def test_counter_never_exceeds_max(self):
        dist = ReuseDistanceDistribution(BOUNDS, counter_bits=2)
        for _ in range(100):
            dist.record(0)
        assert all(c <= 3 for c in dist.counts)


class TestProbabilities:
    def test_empty_is_uniform(self):
        dist = ReuseDistanceDistribution(BOUNDS)
        assert dist.probabilities() == (0.25, 0.25, 0.25, 0.25)

    def test_normalization(self):
        dist = ReuseDistanceDistribution(BOUNDS)
        dist.counts = [1, 1, 0, 2]
        assert dist.probabilities() == (0.25, 0.25, 0.0, 0.5)

    def test_is_warm_threshold(self):
        dist = ReuseDistanceDistribution(BOUNDS)
        assert not dist.is_warm()
        for _ in range(4):
            dist.record(0)
        assert dist.is_warm()


class TestPacking:
    def test_roundtrip(self):
        dist = ReuseDistanceDistribution(BOUNDS)
        dist.counts = [3, 15, 0, 7]
        packed = dist.pack()
        restored = ReuseDistanceDistribution.unpack(packed, BOUNDS)
        assert restored.counts == dist.counts

    def test_packed_fits_16_bits(self):
        dist = ReuseDistanceDistribution(BOUNDS)
        dist.counts = [15, 15, 15, 15]
        assert dist.pack() < (1 << 16)

    def test_copy_independent(self):
        dist = ReuseDistanceDistribution(BOUNDS)
        dist.record(0)
        clone = dist.copy()
        clone.record(0)
        assert dist.counts[0] == 1
        assert clone.counts[0] == 2


class TestValidation:
    def test_rejects_empty_boundaries(self):
        with pytest.raises(ValueError):
            ReuseDistanceDistribution(())

    def test_rejects_decreasing_boundaries(self):
        with pytest.raises(ValueError):
            ReuseDistanceDistribution((10, 5))

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            ReuseDistanceDistribution(BOUNDS, counter_bits=0)


@given(st.lists(st.integers(min_value=0, max_value=10 ** 7), min_size=1,
                max_size=300))
def test_property_total_bounded(distances):
    """Counters never exceed the 4-bit maximum regardless of input."""
    dist = ReuseDistanceDistribution(BOUNDS, counter_bits=4)
    for d in distances:
        dist.record(d)
    assert all(0 <= c <= 15 for c in dist.counts)


@given(st.lists(st.integers(min_value=0, max_value=10 ** 7), min_size=1,
                max_size=200))
def test_property_pack_roundtrip(distances):
    dist = ReuseDistanceDistribution(BOUNDS, counter_bits=4)
    for d in distances:
        dist.record(d)
    assert ReuseDistanceDistribution.unpack(
        dist.pack(), BOUNDS
    ).counts == dist.counts


@given(
    st.lists(st.integers(min_value=0, max_value=10 ** 7), min_size=0,
             max_size=100),
    st.integers(min_value=1, max_value=8),
)
def test_property_probabilities_sum_to_one(distances, bits):
    dist = ReuseDistanceDistribution(BOUNDS, counter_bits=bits)
    for d in distances:
        dist.record(d)
    assert sum(dist.probabilities()) == pytest.approx(1.0)


@given(st.integers(min_value=0, max_value=10 ** 9))
def test_property_bin_respects_boundaries(distance):
    dist = ReuseDistanceDistribution(BOUNDS)
    idx = dist.bin_of(distance)
    if idx < len(BOUNDS):
        assert distance < BOUNDS[idx]
    if idx > 0:
        assert distance >= BOUNDS[idx - 1]


# ----------------------------------------------------------------------
# bin_of: the bisect implementation must match the definitional linear
# scan ("first boundary strictly above the distance") everywhere,
# including exact boundary hits and duplicated boundaries.
# ----------------------------------------------------------------------
def linear_bin_of(boundaries, reuse_distance):
    for idx, bound in enumerate(boundaries):
        if reuse_distance < bound:
            return idx
    return len(boundaries)


@pytest.mark.parametrize("boundaries", [
    (1,),
    (1024,),
    BOUNDS,
    (1, 2, 3, 4),
    (16, 16, 64),          # duplicate boundary: empty middle bin
    (8, 8, 8),             # fully degenerate run
    (0, 1024, 2048),       # zero boundary: bin 0 unreachable
])
def test_bin_of_matches_linear_reference(boundaries):
    dist = ReuseDistanceDistribution(boundaries)
    probes = {0, 1}
    for bound in boundaries:
        probes.update((bound - 1, bound, bound + 1))
    probes.add(max(boundaries) * 1000)
    for distance in sorted(p for p in probes if p >= 0):
        assert dist.bin_of(distance) == linear_bin_of(
            boundaries, distance
        ), f"distance={distance} boundaries={boundaries}"


def test_bin_of_duplicate_boundary_skips_empty_bin():
    # With boundaries (16, 16, 64) no distance satisfies
    # 16 <= d < 16, so bin 1 can never be selected.
    dist = ReuseDistanceDistribution((16, 16, 64))
    assert dist.bin_of(15) == 0
    assert dist.bin_of(16) == 2
    assert dist.bin_of(63) == 2
    assert dist.bin_of(64) == 3


@given(
    st.lists(st.integers(min_value=0, max_value=4096), min_size=1,
             max_size=6),
    st.integers(min_value=0, max_value=10 ** 6),
)
def test_property_bin_of_equals_linear_reference(raw_bounds, distance):
    boundaries = tuple(sorted(raw_bounds))
    dist = ReuseDistanceDistribution(boundaries)
    assert dist.bin_of(distance) == linear_bin_of(boundaries, distance)
