"""Tests for the SLIP runtime: TLB misses, page metadata, EOU hookup."""

import pytest

from repro.core.runtime import BaselineRuntime, SlipRuntime
from repro.core.sampling import PageState
from repro.mem.tlb import distribution_line_address, pte_line_address


class TestBaselineRuntime:
    def test_tlb_hit_no_fetches(self, tiny_system):
        runtime = BaselineRuntime(tiny_system)
        runtime.on_demand_access(5)
        assert runtime.on_demand_access(5) == []

    def test_tlb_miss_fetches_pte(self, tiny_system):
        runtime = BaselineRuntime(tiny_system)
        fetches = runtime.on_demand_access(5)
        assert fetches == [pte_line_address(5)]

    def test_not_slip_enabled(self, tiny_system):
        assert not BaselineRuntime(tiny_system).slip_enabled

    def test_no_extra_stalls(self, tiny_system):
        assert BaselineRuntime(tiny_system).extra_stall_cycles() == 0


class TestSlipRuntimePageLifecycle:
    def test_new_page_starts_sampling(self, tiny_system):
        runtime = SlipRuntime(tiny_system)
        runtime.on_demand_access(3)
        assert runtime.pages[3].state is PageState.SAMPLING

    def test_sampling_page_fetches_distribution(self, tiny_system):
        runtime = SlipRuntime(tiny_system)
        fetches = runtime.on_demand_access(3)
        assert pte_line_address(3) in fetches
        assert distribution_line_address(3) in fetches

    def test_default_policy_while_sampling(self, tiny_system):
        runtime = SlipRuntime(tiny_system)
        runtime.on_demand_access(3)
        assert (
            runtime.policy_for("L2", 3) == runtime.spaces["L2"].default_id
        )

    def test_unknown_page_gets_default(self, tiny_system):
        runtime = SlipRuntime(tiny_system)
        assert (
            runtime.policy_for("L2", 999)
            == runtime.spaces["L2"].default_id
        )

    def test_cold_page_cannot_stabilize(self, tiny_system):
        runtime = SlipRuntime(tiny_system, seed=0)
        runtime.sampler.nsamp = 1  # transition would fire every miss
        for _ in range(10):
            runtime.on_demand_access(3)
            runtime.tlb.flush()
        # No samples collected -> the warm gate keeps it sampling.
        assert runtime.pages[3].state is PageState.SAMPLING

    def test_warm_page_stabilizes_and_gets_policy(self, tiny_system):
        runtime = SlipRuntime(tiny_system, seed=0)
        runtime.sampler.nsamp = 1
        runtime.on_demand_access(3)
        for _ in range(8):
            runtime.record_miss_sample("L2", 3)
            runtime.record_miss_sample("L3", 3)
        runtime.tlb.flush()
        runtime.on_demand_access(3)
        assert runtime.pages[3].state is PageState.STABLE
        # Pure-miss profile with ABP allowed -> full bypass at L2.
        assert runtime.policy_for("L2", 3) == runtime.spaces["L2"].abp_id

    def test_allow_abp_false_blocks_bypass(self, tiny_system):
        runtime = SlipRuntime(tiny_system, allow_abp=False, seed=0)
        runtime.sampler.nsamp = 1
        runtime.on_demand_access(3)
        for _ in range(8):
            runtime.record_miss_sample("L2", 3)
        runtime.tlb.flush()
        runtime.on_demand_access(3)
        assert runtime.policy_for("L2", 3) != runtime.spaces["L2"].abp_id

    def test_stable_page_stops_collecting(self, tiny_system):
        runtime = SlipRuntime(tiny_system, seed=0)
        runtime.sampler.nsamp = 1
        runtime.on_demand_access(3)
        for _ in range(8):
            runtime.record_miss_sample("L2", 3)
        runtime.tlb.flush()
        runtime.on_demand_access(3)
        counts_before = list(runtime.pages[3].distributions["L2"].counts)
        runtime.record_miss_sample("L2", 3)
        runtime.record_reuse("L2", 3, 10)
        assert runtime.pages[3].distributions["L2"].counts == counts_before

    def test_reuse_recorded_while_sampling(self, tiny_system):
        runtime = SlipRuntime(tiny_system)
        runtime.on_demand_access(3)
        runtime.record_reuse("L2", 3, 5)
        dist = runtime.pages[3].distributions["L2"]
        assert dist.counts[0] == 1

    def test_stats_track_fetches(self, tiny_system):
        runtime = SlipRuntime(tiny_system)
        for page in range(4):
            runtime.on_demand_access(page)
        assert runtime.stats.tlb_miss_fetches == 4
        assert runtime.stats.distribution_fetches == 4


class TestAlwaysSample:
    def test_always_fetches_distribution(self, tiny_system):
        runtime = SlipRuntime(tiny_system, always_sample=True)
        for _ in range(3):
            fetches = runtime.on_demand_access(3)
            assert distribution_line_address(3) in fetches
            runtime.tlb.flush()

    def test_policy_active_immediately_once_warm(self, tiny_system):
        runtime = SlipRuntime(tiny_system, always_sample=True)
        runtime.on_demand_access(3)
        for _ in range(8):
            runtime.record_miss_sample("L2", 3)
            runtime.record_miss_sample("L3", 3)
        runtime.tlb.flush()
        runtime.on_demand_access(3)
        assert runtime.policy_for("L2", 3) == runtime.spaces["L2"].abp_id

    def test_collection_continues_when_stable(self, tiny_system):
        runtime = SlipRuntime(tiny_system, always_sample=True)
        runtime.on_demand_access(3)
        runtime.record_miss_sample("L2", 3)
        before = runtime.pages[3].distributions["L2"].counts[-1]
        runtime.record_miss_sample("L2", 3)
        assert runtime.pages[3].distributions["L2"].counts[-1] == before + 1


class TestEouIntegration:
    def test_eou_boundaries_match_level_config(self, tiny_system):
        runtime = SlipRuntime(tiny_system)
        runtime.on_demand_access(0)
        entry = runtime.pages[0]
        l2 = tiny_system.l2
        assert entry.distributions["L2"].boundaries == tuple(
            l2.cumulative_capacity_lines()
        )

    def test_eou_energy_accumulates(self, tiny_system):
        runtime = SlipRuntime(tiny_system, seed=0)
        runtime.sampler.nsamp = 1
        runtime.on_demand_access(3)
        for _ in range(8):
            runtime.record_miss_sample("L2", 3)
        runtime.tlb.flush()
        runtime.on_demand_access(3)
        assert runtime.eou_energy_pj("L2") > 0
        assert runtime.extra_stall_cycles() > 0
