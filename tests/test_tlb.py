"""Tests for the TLB and metadata address mapping."""

import pytest

from repro.mem.tlb import (
    DIST_TABLE_BASE,
    PTE_TABLE_BASE,
    Tlb,
    distribution_line_address,
    is_metadata_address,
    pte_line_address,
)


class TestTlb:
    def test_first_access_misses(self):
        assert not Tlb(4).access(1)

    def test_second_access_hits(self):
        tlb = Tlb(4)
        tlb.access(1)
        assert tlb.access(1)

    def test_lru_eviction(self):
        tlb = Tlb(2)
        tlb.access(1)
        tlb.access(2)
        tlb.access(1)      # 1 becomes MRU
        tlb.access(3)      # evicts 2
        assert tlb.contains(1)
        assert not tlb.contains(2)
        assert tlb.contains(3)

    def test_capacity_respected(self):
        tlb = Tlb(4)
        for page in range(10):
            tlb.access(page)
        assert sum(tlb.contains(p) for p in range(10)) == 4

    def test_stats(self):
        tlb = Tlb(4)
        tlb.access(1)
        tlb.access(1)
        tlb.access(2)
        assert tlb.stats.hits == 1
        assert tlb.stats.misses == 2
        assert tlb.stats.miss_rate() == pytest.approx(2 / 3)

    def test_flush(self):
        tlb = Tlb(4)
        tlb.access(1)
        tlb.flush()
        assert not tlb.contains(1)

    def test_zero_entries_rejected(self):
        with pytest.raises(ValueError):
            Tlb(0)


class TestMetadataAddresses:
    def test_pte_addresses_in_reserved_region(self):
        assert pte_line_address(0) >= PTE_TABLE_BASE
        assert is_metadata_address(pte_line_address(12345))

    def test_distribution_addresses_in_reserved_region(self):
        assert distribution_line_address(0) >= DIST_TABLE_BASE

    def test_eight_ptes_per_line(self):
        assert pte_line_address(0) == pte_line_address(7)
        assert pte_line_address(7) != pte_line_address(8)

    def test_sixteen_distributions_per_line(self):
        assert distribution_line_address(0) == distribution_line_address(15)
        assert (
            distribution_line_address(15) != distribution_line_address(16)
        )

    def test_demand_addresses_not_metadata(self):
        assert not is_metadata_address(0)
        assert not is_metadata_address((1 << 40) - 1)

    def test_regions_disjoint(self):
        # A PTE line for any realistic page never collides with a
        # distribution line.
        assert pte_line_address(1 << 30) < DIST_TABLE_BASE
