"""Tests for the CacheLevel substrate."""

import pytest

from repro.mem.cache import NO_CHUNK, CacheLevel
from repro.mem.replacement import LruReplacement


@pytest.fixture
def level(tiny_system):
    return CacheLevel(tiny_system.l2, LruReplacement())


def fill(level, addr, **kwargs):
    set_idx = level.set_index(addr)
    way = level.choose_victim(set_idx, range(level.cfg.ways))
    victim = level.extract(set_idx, way)
    level.place_fill(set_idx, way, addr, **kwargs)
    return set_idx, way, victim


class TestProbeAndFill:
    def test_empty_cache_misses(self, level):
        _, way = level.probe(42)
        assert way is None

    def test_fill_then_hit(self, level):
        set_idx, way, _ = fill(level, 42)
        found_set, found_way = level.probe(42)
        assert (found_set, found_way) == (set_idx, way)

    def test_fill_records_insertion_energy(self, level):
        fill(level, 0)
        assert level.stats.insertions == 1
        assert level.stats.materialize().energy.insertion_pj > 0

    def test_fill_into_valid_way_raises(self, level):
        set_idx, way, _ = fill(level, 0)
        with pytest.raises(RuntimeError):
            level.place_fill(set_idx, way, 12345)

    def test_same_set_conflict_evicts_lru(self, level):
        sets = level.cfg.sets
        ways = level.cfg.ways
        addrs = [i * sets for i in range(ways + 1)]  # same set
        victims = []
        for addr in addrs:
            _, _, victim = fill(level, addr)
            if victim is not None:
                victims.append(victim.tag)
        assert victims == [addrs[0]]  # oldest goes first

    def test_index_tracks_probe(self, level):
        for addr in range(100):
            fill(level, addr)
        for line in level.resident_lines():
            set_idx, way = level.probe(line.tag)
            assert level.sets[set_idx][way].tag == line.tag


class TestHitAccounting:
    def test_hit_energy_matches_sublevel(self, level):
        set_idx, way, _ = fill(level, 0)
        before = level.stats.materialize().energy.read_pj
        level.record_hit(set_idx, way, is_write=False)
        delta = level.stats.materialize().energy.read_pj - before
        assert delta == level.cfg.read_energy_pj(way)

    def test_hit_latency_matches_sublevel(self, level):
        set_idx, way, _ = fill(level, 0)
        assert level.record_hit(set_idx, way, False) == (
            level.cfg.latency_of_way(way)
        )

    def test_write_hit_sets_dirty(self, level):
        set_idx, way, _ = fill(level, 0)
        level.record_hit(set_idx, way, is_write=True)
        assert level.sets[set_idx][way].dirty

    def test_hits_by_sublevel(self, level):
        set_idx, way, _ = fill(level, 0)
        level.record_hit(set_idx, way, False)
        sublevel = level.cfg.sublevel_of_way(way)
        assert level.stats.hits_by_sublevel[sublevel] == 1

    def test_metadata_hits_separate(self, level):
        set_idx, way, _ = fill(level, 0)
        level.record_hit(set_idx, way, False, is_metadata=True)
        assert level.stats.metadata_hits == 1
        assert level.stats.demand_hits == 0

    def test_metadata_energy_charged_when_tracked(self, tiny_system):
        tracked = CacheLevel(tiny_system.l2, LruReplacement(),
                             track_metadata_energy=True)
        set_idx, way, _ = fill(tracked, 0)
        tracked.record_hit(set_idx, way, False)
        assert tracked.stats.materialize().energy.metadata_pj > 0

    def test_metadata_energy_not_charged_by_default(self, level):
        set_idx, way, _ = fill(level, 0)
        level.record_hit(set_idx, way, False)
        assert level.stats.materialize().energy.metadata_pj == 0


class TestMovement:
    def test_place_moved_charges_read_plus_write(self, level):
        set_idx, way, _ = fill(level, 0)
        moved = level.extract(set_idx, way)
        target = (way + 1) % level.cfg.ways
        expected = (
            level.cfg.read_energy_pj(way)
            + level.cfg.write_energy_pj(target)
        )
        level.place_moved(set_idx, target, moved, new_chunk_idx=1)
        assert level.stats.materialize().energy.movement_pj == \
            pytest.approx(expected)
        assert level.stats.movements == 1

    def test_moved_line_keeps_identity(self, level):
        set_idx, way, _ = fill(level, 0, policy_id=3, page=7)
        level.record_hit(set_idx, way, True)  # dirty + 1 hit
        moved = level.extract(set_idx, way)
        level.place_moved(set_idx, 2, moved, new_chunk_idx=1)
        line = level.sets[set_idx][2]
        assert line.tag == 0
        assert line.dirty
        assert line.policy_id == 3
        assert line.page == 7
        assert line.chunk_idx == 1
        assert line.hits == 1
        assert line.demoted

    def test_promoted_line_not_marked_demoted(self, level):
        set_idx, way, _ = fill(level, 0)
        moved = level.extract(set_idx, way)
        level.place_moved(set_idx, 1, moved, new_chunk_idx=0,
                          demoted=False)
        assert not level.sets[set_idx][1].demoted

    def test_movement_queue_energy_charged(self, level):
        set_idx, way, _ = fill(level, 0)
        moved = level.extract(set_idx, way)
        level.place_moved(set_idx, 1, moved, new_chunk_idx=1,
                          movement_queue_pj=0.3)
        assert level.stats.energy.movement_queue_pj == pytest.approx(0.3)


class TestEvictionAndDeparture:
    def test_extract_invalid_returns_none(self, level):
        assert level.extract(0, 0) is None

    def test_departure_records_reuse_histogram(self, level):
        set_idx, way, _ = fill(level, 0)
        level.record_hit(set_idx, way, False)
        level.record_hit(set_idx, way, False)
        evicted = level.extract(set_idx, way)
        level.record_departure(evicted)
        assert level.stats.reuse_histogram["2"] == 1

    def test_many_reuses_bucket(self, level):
        set_idx, way, _ = fill(level, 0)
        for _ in range(5):
            level.record_hit(set_idx, way, False)
        level.record_departure(level.extract(set_idx, way))
        assert level.stats.reuse_histogram[">2"] == 1

    def test_writeback_out_charges_read(self, level):
        set_idx, way, _ = fill(level, 0)
        level.record_writeback_out(way)
        assert level.stats.materialize().energy.writeback_pj == (
            level.cfg.read_energy_pj(way)
        )
        assert level.stats.writebacks_out == 1

    def test_writeback_in_sets_dirty_and_charges_write(self, level):
        set_idx, way, _ = fill(level, 0)
        level.record_writeback_in(set_idx, way)
        assert level.sets[set_idx][way].dirty
        assert level.stats.materialize().energy.writeback_pj > 0

    def test_invalidate_removes_line(self, level):
        fill(level, 0)
        evicted = level.invalidate(0)
        assert evicted is not None
        _, way = level.probe(0)
        assert way is None

    def test_invalidate_absent_returns_none(self, level):
        assert level.invalidate(999) is None


class TestTimestamps:
    def test_wraps_at_4c(self, level):
        assert level.timestamp_wrap == 4 * level.cfg.lines

    def test_tiny_config_granule_floors_at_one(self):
        # Regression: a level with fewer than 2**timestamp_bits / 4
        # lines shifted its granule to 0 and divided by zero.
        from repro.sim.config import CacheLevelConfig

        tiny = CacheLevelConfig(
            name="L1", size_bytes=512, ways=2, latency_cycles=1,
            access_energy_pj=1.0,
        )  # 8 lines -> timestamp_wrap 32 < 2**6
        level = CacheLevel(tiny, LruReplacement(), timestamp_bits=6)
        assert level.timestamp_wrap < (1 << level.timestamp_bits)
        for _ in range(5):
            level.tick()
        assert level.timestamp_now() == 5
        assert level.reuse_distance(2) == 3

    def test_timestamp_granularity(self, level):
        level.access_counter = 0
        t0 = level.timestamp_now()
        granule = level.timestamp_wrap >> level.timestamp_bits
        level.access_counter = granule
        assert level.timestamp_now() == (t0 + 1) % (1 << level.timestamp_bits)

    def test_reuse_distance_roundtrip(self, level):
        level.access_counter = 0
        ts = level.timestamp_now()
        granule = level.timestamp_wrap >> level.timestamp_bits
        level.access_counter = 5 * granule
        assert level.reuse_distance(ts) == 5 * granule

    def test_reuse_distance_wraparound(self, level):
        granule = level.timestamp_wrap >> level.timestamp_bits
        level.access_counter = 2 * granule
        old_ts = level.timestamp_now()
        # Advance almost a full wrap; modular difference stays positive.
        level.access_counter = (
            level.access_counter + level.timestamp_wrap - granule
        ) % level.timestamp_wrap
        distance = level.reuse_distance(old_ts)
        assert 0 <= distance < level.timestamp_wrap

    def test_tick_advances_and_wraps(self, level):
        level.access_counter = level.timestamp_wrap - 1
        assert level.tick() == 0


class TestOccupancyHelpers:
    def test_occupancy_empty(self, level):
        assert level.occupancy() == 0.0

    def test_occupancy_counts_valid(self, level):
        for addr in range(10):
            fill(level, addr)
        assert level.occupancy() == pytest.approx(10 / level.cfg.lines)

    def test_reset_stats_keeps_contents(self, level):
        fill(level, 0)
        level.reset_stats()
        assert level.stats.insertions == 0
        _, way = level.probe(0)
        assert way is not None

    def test_chunk_idx_default(self, level):
        set_idx, way, _ = fill(level, 0)
        assert level.sets[set_idx][way].chunk_idx == NO_CHUNK
